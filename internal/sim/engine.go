package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// heapSizeHint pre-sizes the event heap so steady-state simulations never
// grow it; eventChunk is the slab size of the event free list.
const (
	heapSizeHint = 1 << 10
	eventChunk   = 256
)

// maxTime is the deadline used by Run: no event timestamp can exceed it.
const maxTime = Time(math.MaxInt64)

// Action is a pre-allocated event callback: an alternative to the func()
// of At/After that avoids the per-event closure allocation on hot paths.
// The engine stores the interface value it is given; implementations are
// typically pooled by their owner, which must not recycle an Action
// before it fires.
type Action interface {
	Run()
}

// Engine is the discrete-event simulation kernel. Create one with New,
// spawn processes with Spawn, and drive the simulation with Run.
//
// All methods must be called either from kernel callbacks (At/After
// functions) or from the currently running process; the kernel is strictly
// sequential and is not safe for use from other goroutines.
//
// There is no dedicated kernel goroutine: the event loop migrates. The
// goroutine that calls Run starts the loop; when a process yields, its
// own goroutine becomes the kernel and keeps popping events in place, so
// kernel callbacks and self-resumptions cost no goroutine switch at all,
// and handing the virtual CPU to another process is a single channel
// operation. Exactly one goroutine is the kernel at any instant.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	free    *event // recycled events (single-threaded: no locking)
	running *Proc
	// doneCh hands the kernel role back to the goroutine blocked in
	// Run/RunUntil (or, per victim, Shutdown) when the loop ends its
	// tenure on a process goroutine.
	doneCh   chan struct{}
	deadline Time // event horizon of the current Run/RunUntil
	rng      *rand.Rand
	tracer   Tracer
	probe    Probe
	procs    []*Proc // live (spawned, not yet finished) processes, unordered
	freeProc *Proc   // finished procs whose goroutine+channel await reuse
	stopped  bool    // set by Stop
	killing  bool    // set by Shutdown
	failure  error
	// kernelPanic holds a panic raised by a kernel callback (At/After fn
	// or Action). It ends the run and is re-raised from Run/RunUntil on
	// the caller's goroutine, matching the pre-migrating-loop behavior
	// where callbacks always ran on the Run goroutine.
	kernelPanic any

	// Stats counters, cheap enough to keep always-on.
	events     uint64
	dispatches uint64
	handoffs   uint64
	// chargedTotal accumulates every completed virtual-CPU charge; the
	// virtual-time profiler checks its totals against this.
	chargedTotal Duration
}

// New returns an engine whose random source is seeded with seed.
// The same seed always yields the same simulation.
func New(seed int64) *Engine {
	return &Engine{
		doneCh: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		heap:   eventHeap{ev: make([]*event, 0, heapSizeHint)},
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs a tracer; pass nil to disable tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// SetProbe installs a process-accounting probe; pass nil to disable.
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// Charged reports the total virtual CPU time consumed by completed
// charges so far (Charge in full; ChargeInterruptible by the amount
// actually burned before completion or interruption).
func (e *Engine) Charged() Duration { return e.chargedTotal }

// Events reports the number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

// Dispatches reports the number of process control transfers so far.
func (e *Engine) Dispatches() uint64 { return e.dispatches }

// Handoffs reports how many dispatches crossed goroutines (one channel
// operation each). Dispatches minus Handoffs is the number of resumes the
// yielding goroutine served to itself with zero channel operations.
func (e *Engine) Handoffs() uint64 { return e.handoffs }

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return len(e.procs) }

// alloc takes an event from the free list, refilling it a slab at a time.
func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		chunk := make([]event, eventChunk)
		for i := range chunk {
			chunk[i].next = e.free
			e.free = &chunk[i]
		}
		ev = e.free
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// release recycles a fired or surfaced-cancelled event. Bumping gen
// invalidates any Timer still holding the pointer.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.act = nil
	ev.proc = nil
	ev.kind = evFunc
	ev.cancelled = false
	ev.next = e.free
	e.free = ev
}

// schedule is the single entry point onto the event heap.
func (e *Engine) schedule(t Time, kind eventKind, fn func(), act Action, p *Proc) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.kind = kind
	ev.fn = fn
	ev.act = act
	ev.proc = p
	e.heap.push(ev)
	return ev
}

// At schedules fn to run in kernel context at absolute time t. Scheduling
// in the past is a programming error. Kernel callbacks must not block or
// call process-context methods such as Charge or Park.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, evFunc, fn, nil, nil) }

// After schedules fn to run in kernel context d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// AtAction schedules a pre-allocated Action at absolute time t. Unlike At
// it allocates nothing beyond a pooled event, so hot paths (packet
// delivery) can schedule without producing garbage.
func (e *Engine) AtAction(t Time, a Action) { e.schedule(t, evAction, nil, a, nil) }

// AfterAction schedules a pre-allocated Action d from now.
func (e *Engine) AfterAction(d Duration, a Action) { e.AtAction(e.now.Add(d), a) }

// atProc schedules the resumption of p at time t without any closure.
func (e *Engine) atProc(t Time, p *Proc) { e.schedule(t, evProc, nil, nil, p) }

// Timer is a handle to a scheduled kernel callback that can be cancelled
// before it fires. Handles stay safe across event recycling: a Timer
// whose event already fired (and may since have been reused for an
// unrelated event) simply fails to cancel.
type Timer struct {
	ev  *event
	gen uint64
}

// AtTimer is At returning a cancellable handle.
func (e *Engine) AtTimer(t Time, fn func()) *Timer {
	ev := e.schedule(t, evFunc, fn, nil, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// AfterTimer is After returning a cancellable handle.
func (e *Engine) AfterTimer(d Duration, fn func()) *Timer {
	return e.AtTimer(e.now.Add(d), fn)
}

// Cancel prevents the timer's callback from running and reports whether
// it did (false when the callback already ran or was already cancelled).
func (t *Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	t.ev = nil
	return true
}

// Stop terminates Run after the current event completes. Call Shutdown to
// release the goroutines of any still-live processes.
func (e *Engine) Stop() { e.stopped = true }

// killed is the sentinel panic value used by Shutdown to unwind process
// goroutines. It never escapes the package.
type killedSentinel struct{}

// Shutdown forcibly terminates every live process and drops all pending
// events, releasing the backing goroutines — including the pooled workers
// of already-finished processes. It must be called from outside Run
// (i.e., not from a process or kernel callback). The engine is dead
// afterwards. Simulations that end with parked service processes (node
// idle loops, servers) should always Shutdown to avoid goroutine leaks.
//
// Victims are killed in ascending pid (spawn) order, so shutdown-time
// tracer output is deterministic run to run.
func (e *Engine) Shutdown() {
	if e.running != nil {
		panic("sim: Shutdown from inside the simulation")
	}
	e.killing = true
	e.heap.ev = nil
	e.free = nil
	// Snapshot: killing procs mutates e.procs.
	victims := make([]*Proc, len(e.procs))
	copy(victims, e.procs)
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, p := range victims {
		if p.dead {
			continue
		}
		e.dispatches++
		e.handoffs++
		e.running = p
		if e.tracer != nil {
			e.tracer.Resume(e.now, p)
		}
		p.resume <- struct{}{}
		<-e.doneCh // the victim's goroutine has unwound
		e.running = nil
	}
	// Drain the worker pool: a token with no body pending tells the
	// goroutine to exit instead of running an incarnation.
	for p := e.freeProc; p != nil; p = p.next {
		p.resume <- struct{}{}
	}
	e.freeProc = nil
	e.stopped = true
}

// loopOutcome says how a kernel-loop tenure on some goroutine ended.
type loopOutcome uint8

const (
	// loopEnded: the run is over (heap empty, deadline passed, Stop,
	// failure, or a kernel-callback panic). The kernel role returns to
	// the goroutine blocked in Run.
	loopEnded loopOutcome = iota
	// loopSelf: the caller's own resume event surfaced; it simply
	// continues as the running process. Zero channel operations.
	loopSelf
	// loopHandoff: the kernel role was handed to another process's
	// goroutine with a single channel send.
	loopHandoff
)

// loop runs the kernel on the calling goroutine: it pops and fires events
// until the run ends, the role moves to another goroutine, or — when self
// is non-nil — self's own resumption surfaces, in which case the caller
// continues straight back into process context on the live stack.
func (e *Engine) loop(self *Proc) loopOutcome {
	for {
		if e.stopped || e.failure != nil || e.kernelPanic != nil || e.heap.len() == 0 {
			return loopEnded
		}
		if e.heap.ev[0].at > e.deadline {
			return loopEnded
		}
		ev := e.heap.pop()
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.events++
		// Recycle before firing, so callbacks scheduling new events can
		// reuse the slot immediately.
		kind, fn, act, p := ev.kind, ev.fn, ev.act, ev.proc
		e.release(ev)
		switch kind {
		case evProc, evIntProc:
			if kind == evIntProc {
				p.intTimer = Timer{}
			}
			if p.dead {
				continue
			}
			if e.running != nil {
				panic("sim: dispatch while a process is running")
			}
			e.dispatches++
			e.running = p
			if e.tracer != nil {
				e.tracer.Resume(e.now, p)
			}
			if p == self {
				return loopSelf
			}
			e.handoffs++
			p.resume <- struct{}{}
			return loopHandoff
		case evAction:
			e.fireCallback(nil, act)
		default:
			e.fireCallback(fn, nil)
		}
	}
}

// fireCallback runs a kernel callback, converting a panic into a stashed
// kernelPanic so it unwinds no process goroutine; Run re-raises it.
func (e *Engine) fireCallback(fn func(), act Action) {
	defer func() {
		if r := recover(); r != nil {
			e.kernelPanic = r
		}
	}()
	if act != nil {
		act.Run()
	} else {
		fn()
	}
}

// runKernel starts a kernel tenure on the calling (Run) goroutine and
// blocks until the run is over, however many goroutines the loop migrated
// across in between.
func (e *Engine) runKernel() {
	if e.loop(nil) == loopHandoff {
		<-e.doneCh
	}
}

// finishRun re-raises a stashed kernel-callback panic on the caller's
// goroutine, or reports the first process failure.
func (e *Engine) finishRun() error {
	if r := e.kernelPanic; r != nil {
		e.kernelPanic = nil
		panic(r)
	}
	return e.failure
}

// Run executes events until the heap is empty, Stop is called, or a process
// panics. It returns the first process failure, if any. A non-empty set of
// parked processes with an empty heap is quiescence, not an error; callers
// that consider it a deadlock can check Live.
func (e *Engine) Run() error {
	e.deadline = maxTime
	e.runKernel()
	return e.finishRun()
}

// RunUntil executes events with timestamps <= deadline. It returns the
// first process failure, if any.
func (e *Engine) RunUntil(deadline Time) error {
	e.deadline = deadline
	e.runKernel()
	if e.now < deadline && e.failure == nil && e.kernelPanic == nil {
		e.now = deadline
	}
	return e.finishRun()
}

// yieldToKernel hands control from the running process to the kernel: the
// process's own goroutine becomes the kernel and keeps firing events in
// place. It returns when the process is next dispatched — directly, when
// its own resume event surfaces during its tenure (no channel operation),
// or via a handoff from whichever goroutine holds the loop by then. If
// the engine is being shut down when control returns, the process unwinds
// via the kill sentinel, which the spawn wrapper recovers.
func (e *Engine) yieldToKernel(p *Proc) {
	if e.tracer != nil {
		e.tracer.Yield(e.now, p)
	}
	e.running = nil
	switch e.loop(p) {
	case loopSelf:
		// Resumed on the live stack; this goroutine held the kernel role
		// throughout and is the running process again.
	case loopEnded:
		e.doneCh <- struct{}{}
		<-p.resume
	case loopHandoff:
		<-p.resume
	}
	if e.killing {
		panic(killedSentinel{})
	}
}

// addProc registers a newly spawned process in the live table.
func (e *Engine) addProc(p *Proc) {
	p.slot = len(e.procs)
	e.procs = append(e.procs, p)
}

// removeProc drops a finished process from the live table by swapping the
// last entry into its slot — O(1), no map on the spawn/exit path.
func (e *Engine) removeProc(p *Proc) {
	last := len(e.procs) - 1
	moved := e.procs[last]
	e.procs[p.slot] = moved
	moved.slot = p.slot
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// checkRunning panics unless p is the currently executing process. It
// guards the process-context-only API.
func (e *Engine) checkRunning(p *Proc, op string) {
	if e.running != p {
		panic(fmt.Sprintf("sim: %s called on %q which is not the running process", op, p.name))
	}
}
