// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel models virtual time with nanosecond resolution and drives a set
// of coroutine processes (Proc). Exactly one process executes at any moment;
// control transfers between the kernel and processes are explicit, so a
// simulation run is sequential and bit-for-bit reproducible regardless of
// host scheduling.
//
// Processes are backed by goroutines but are not concurrent: a process runs
// until it yields by charging virtual time (Charge), parking (Park), or
// returning. The event loop then migrates onto the yielding goroutine: it
// pops the next event off a (time, sequence) ordered heap in place, fires
// kernel callbacks inline, resumes itself on the live stack when its own
// event surfaces, and hands the loop to another process's goroutine with a
// single channel send otherwise. Finished processes park their goroutine
// on a free list for reuse by Spawn. Because only one goroutine is ever
// runnable, shared state touched by processes and kernel callbacks needs
// no locking.
//
// The package is the substrate for the CM-5 machine model (package cm5),
// the user-level thread package (package threads), and everything above
// them. It knows nothing about nodes, networks, or threads.
package sim
