package water

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	watergen "repro/internal/apps/water/gen"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// CostCopyPerByte is the buffer-to-application copy the RPC versions pay
// for call-by-value semantics (the AM version deposits data directly).
var CostCopyPerByte = sim.Micros(0.04)

// slot is a one-deep message buffer with blocking store semantics.
type slot struct {
	full    bool
	data    []float64
	notFull *threads.Cond
	isFull  *threads.Cond
}

// nodeState is one node's share of the system.
type nodeState struct {
	lo, hi int
	pos    []float64 // full 3n array; [3lo,3hi) authoritative
	vel    []float64 // own range only (full array allocated)
	acc    []float64
	upd    []float64

	mu       *threads.Mutex
	posSlots []*slot // indexed by source node
	updSlots []*slot
}

// molPartition splits n molecules across p nodes.
func molPartition(n, p, i int) (lo, hi int) {
	base, extra := n/p, n%p
	lo = i*base + min(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// updTopology computes which nodes exchange phase-2 update messages:
// sends[m][d] is true when some molecule owned by m has a half-shell
// partner owned by d. Under the cyclic half-shell rule each node sends
// to roughly the P/2 owners that follow it.
func updTopology(mols, p int) [][]bool {
	owner := make([]int, mols)
	for i := 0; i < p; i++ {
		lo, hi := molPartition(mols, p, i)
		for m := lo; m < hi; m++ {
			owner[m] = i
		}
	}
	sends := make([][]bool, p)
	for i := range sends {
		sends[i] = make([]bool, p)
	}
	for i := 0; i < mols; i++ {
		halfShell(i, mols, func(j int) {
			if owner[i] != owner[j] {
				sends[owner[i]][owner[j]] = true
			}
		})
	}
	return sends
}

// Run executes Water with the given system on nodes processors.
// useBarrier inserts a hardware barrier between iterations (the paper's
// "with barrier" variants; the AM version always uses it — without it
// the hand-coded version's no-blocking assumption could be violated and
// the program would die).
func Run(sys apps.System, nodes int, useBarrier bool, cfg Config) (apps.Result, error) {
	if sys == apps.AM {
		useBarrier = true
	}
	if nodes > cfg.Mols {
		return apps.Result{}, fmt.Errorf("water: more nodes than molecules")
	}
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())

	init := newState(cfg.Mols, cfg.Seed)
	states := make([]*nodeState, nodes)
	for i := range states {
		lo, hi := molPartition(cfg.Mols, nodes, i)
		ns := &nodeState{
			lo: lo, hi: hi,
			pos: append([]float64(nil), init.pos...),
			vel: append([]float64(nil), init.vel...),
			acc: make([]float64, 3*cfg.Mols),
			upd: make([]float64, 3*cfg.Mols),
		}
		ns.mu = threads.NewMutex(u.Scheduler(i))
		ns.posSlots = make([]*slot, nodes)
		ns.updSlots = make([]*slot, nodes)
		for s := 0; s < nodes; s++ {
			sl, sh := molPartition(cfg.Mols, nodes, s)
			ns.posSlots[s] = &slot{
				data:    make([]float64, 3*(sh-sl)),
				notFull: threads.NewCond(ns.mu),
				isFull:  threads.NewCond(ns.mu),
			}
			ns.updSlots[s] = &slot{
				data:    make([]float64, 3*(hi-lo)),
				notFull: threads.NewCond(ns.mu),
				isFull:  threads.NewCond(ns.mu),
			}
		}
		states[i] = ns
	}

	var (
		sendPos  func(c threads.Ctx, me, dst int, data []float64)
		sendUpd  func(c threads.Ctx, me, dst int, data []float64)
		waitPos  func(c threads.Ctx, me, src int) // fills pos[srcRange]
		waitUpd  func(c threads.Ctx, me, src int) // adds into acc[myRange]
		oamStats func() (uint64, uint64)
	)

	applyUpd := func(ns *nodeState, buf []float64) {
		base := 3 * ns.lo
		for k := range buf {
			ns.acc[base+k] += buf[k]
		}
	}

	var rtForObs *rpc.Runtime
	switch sys {
	case apps.AM:
		// Hand-coded: data deposited straight into application arrays;
		// the barrier guarantees the previous iteration was consumed, and
		// the program dies if that assumption is ever violated.
		posH := u.Register("water/pos", func(c threads.Ctx, pkt *cm5.Packet) {
			ns := states[c.Node().ID()]
			src := pkt.Src
			sl := ns.posSlots[src]
			if sl.full {
				panic("water/AM: position message arrived before previous was consumed")
			}
			srcLo, _ := molPartition(cfg.Mols, nodes, src)
			decodeF64s(pkt.Payload, ns.pos[3*srcLo:3*srcLo+len(sl.data)])
			sl.full = true
		})
		updH := u.Register("water/upd", func(c threads.Ctx, pkt *cm5.Packet) {
			ns := states[c.Node().ID()]
			sl := ns.updSlots[pkt.Src]
			if sl.full {
				panic("water/AM: update message arrived before previous was consumed")
			}
			decodeF64s(pkt.Payload, sl.data)
			sl.full = true
		})
		sendPos = func(c threads.Ctx, me, dst int, data []float64) {
			u.Endpoint(me).SendBulk(c, dst, posH, [4]uint64{}, encodeF64s(data))
		}
		sendUpd = func(c threads.Ctx, me, dst int, data []float64) {
			u.Endpoint(me).SendBulk(c, dst, updH, [4]uint64{}, encodeF64s(data))
		}
		waitPos = func(c threads.Ctx, me, src int) {
			ns := states[me]
			for !ns.posSlots[src].full {
				u.Endpoint(me).Poll(c)
			}
			ns.posSlots[src].full = false
		}
		waitUpd = func(c threads.Ctx, me, src int) {
			ns := states[me]
			sl := ns.updSlots[src]
			for !sl.full {
				u.Endpoint(me).Poll(c)
			}
			applyUpd(ns, sl.data)
			sl.full = false
		}
		oamStats = func() (uint64, uint64) { return 0, 0 }

	case apps.ORPC, apps.TRPC:
		mode := rpc.ORPC
		if sys == apps.TRPC {
			mode = rpc.TRPC
		}
		rt := rpc.New(u, rpc.Options{Mode: mode, OAM: oam.Options{Cores: cfg.Cores}})
		rtForObs = rt
		store := func(e *oam.Env, sl *slot, ns *nodeState, row []float64) {
			e.Lock(ns.mu)
			e.Await(sl.notFull, func() bool { return !sl.full })
			copy(sl.data, row)
			sl.full = true
			e.Signal(sl.isFull)
			e.Unlock(ns.mu)
		}
		positions := watergen.DefinePositions(rt, func(e *oam.Env, caller int, data []float64) {
			ns := states[e.Node()]
			store(e, ns.posSlots[caller], ns, data)
		})
		updates := watergen.DefineUpdates(rt, func(e *oam.Env, caller int, data []float64) {
			ns := states[e.Node()]
			store(e, ns.updSlots[caller], ns, data)
		})
		sendPos = func(c threads.Ctx, me, dst int, data []float64) {
			positions.CallAsync(c, dst, data)
		}
		sendUpd = func(c threads.Ctx, me, dst int, data []float64) {
			updates.CallAsync(c, dst, data)
		}
		consume := func(c threads.Ctx, ns *nodeState, sl *slot, into []float64, add bool) {
			ns.mu.Lock(c)
			for !sl.full {
				sl.isFull.Wait(c)
			}
			// Call-by-value buffer copy (the AM version avoids it).
			c.P.Charge(sim.Duration(8*len(sl.data)) * CostCopyPerByte)
			if add {
				applyUpd(ns, sl.data)
			} else {
				copy(into, sl.data)
			}
			sl.full = false
			sl.notFull.Signal(c)
			ns.mu.Unlock(c)
		}
		waitPos = func(c threads.Ctx, me, src int) {
			ns := states[me]
			srcLo, _ := molPartition(cfg.Mols, nodes, src)
			sl := ns.posSlots[src]
			consume(c, ns, sl, ns.pos[3*srcLo:3*srcLo+len(sl.data)], false)
		}
		waitUpd = func(c threads.Ctx, me, src int) {
			ns := states[me]
			consume(c, ns, ns.updSlots[src], nil, true)
		}
		oamStats = func() (uint64, uint64) {
			ps, us := positions.Stats(), updates.Stats()
			return ps.OAMs + us.OAMs, ps.Successes + us.Successes
		}

	default:
		return apps.Result{}, fmt.Errorf("water: unknown system %v", sys)
	}

	if cfg.Observe != nil {
		cfg.Observe(u, rtForObs)
	}
	topo := updTopology(cfg.Mols, nodes)
	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		ns := states[me]
		ep := u.Endpoint(me)
		sched := u.Scheduler(me)
		for it := 0; it < cfg.Iters; it++ {
			// Phase 1: broadcast my positions to every other processor.
			mine := ns.pos[3*ns.lo : 3*ns.hi]
			for dst := 0; dst < nodes; dst++ {
				if dst != me {
					sendPos(c, me, dst, mine)
				}
			}
			for src := 0; src < nodes; src++ {
				if src != me {
					waitPos(c, me, src)
				}
			}
			// Local computation: owner-computes-half force phase.
			for i := range ns.acc {
				ns.acc[i] = 0
				ns.upd[i] = 0
			}
			accumulateOwned(ns.pos, ns.lo, ns.hi, cfg.Mols, ns.acc, ns.upd, func(pairs int) {
				c.P.Charge(sim.Duration(pairs) * CostPair)
				apps.Service(c, ep)
			})
			// Phase 2: scatter queued updates to the cyclically following
			// owners (roughly half of them); collect from the preceding
			// ones, in node order so accumulation stays deterministic.
			for dst := 0; dst < nodes; dst++ {
				if topo[me][dst] {
					dl, dh := molPartition(cfg.Mols, nodes, dst)
					sendUpd(c, me, dst, ns.upd[3*dl:3*dh])
				}
			}
			for src := 0; src < nodes; src++ {
				if topo[src][me] {
					waitUpd(c, me, src)
				}
			}
			// My own queued updates for my own molecules.
			applyUpd(ns, ns.upd[3*ns.lo:3*ns.hi])
			c.P.Charge(sim.Duration(ns.hi-ns.lo) * CostMol)
			integrate(&state{n: cfg.Mols, pos: ns.pos, vel: ns.vel}, ns.lo, ns.hi, ns.acc)
			if useBarrier {
				sched.Barrier(c)
			}
		}
	})
	if err != nil {
		return apps.Result{}, fmt.Errorf("water/%v: %w", sys, err)
	}

	var sum uint64
	for _, ns := range states {
		sum += checksum(&state{n: cfg.Mols, pos: ns.pos, vel: ns.vel}, ns.lo, ns.hi)
	}
	oams, succ := oamStats()
	res := apps.Result{
		System:  sys,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  sum,
	}
	apps.FillResult(&res, u, oams, succ)
	return res, nil
}

func encodeF64s(data []float64) []byte {
	e := rpc.NewEnc(8 * len(data))
	for _, v := range data {
		e.F64(v)
	}
	return e.Bytes()
}

func decodeF64s(b []byte, into []float64) {
	d := rpc.NewDec(b)
	for i := range into {
		into[i] = d.F64()
	}
	d.Done()
}
