package sched

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cm5"
	"repro/internal/sim"
)

func mustRun(t *testing.T, agents int, cfg Config) (apps.Result, Stats) {
	t.Helper()
	res, st, err := Run(agents, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	jobs := cfg.Jobs
	if cfg.Specs != nil {
		jobs = len(cfg.Specs)
	}
	if ierr := CheckInvariants(st.Record, jobs, agents, true); ierr != nil {
		t.Fatalf("invariants: %v", ierr)
	}
	if st.Accepted != uint64(jobs) {
		t.Fatalf("Accepted = %d, want %d", st.Accepted, jobs)
	}
	return res, st
}

func TestCleanRun(t *testing.T) {
	_, st := mustRun(t, 3, Config{Jobs: 12, Seed: 1})
	if st.Placements != 12 {
		t.Errorf("Placements = %d, want 12 (no churn on a clean network)", st.Placements)
	}
	if st.Expiries != 0 || st.Migrations != 0 || st.PlaceFails != 0 {
		t.Errorf("clean network reclaimed leases: expiries=%d migrations=%d placefails=%d",
			st.Expiries, st.Migrations, st.PlaceFails)
	}
	if st.DeadDeclared != 0 {
		t.Errorf("DeadDeclared = %d, want 0", st.DeadDeclared)
	}
	if st.StaleCompletions != 0 || st.DupCompletions != 0 {
		t.Errorf("clean network fenced completions: stale=%d dup=%d",
			st.StaleCompletions, st.DupCompletions)
	}
	if st.Heartbeats == 0 {
		t.Error("no heartbeats recorded")
	}
}

func TestExplicitSpecs(t *testing.T) {
	specs := []JobSpec{
		{CPU: 4, Mem: 8, Dur: sim.Micros(400)},
		{CPU: 2, Mem: 2, Dur: sim.Micros(300)},
		{CPU: 8, Mem: 16, Dur: sim.Micros(500)},
	}
	_, st := mustRun(t, 2, Config{Specs: specs, Seed: 7})
	if st.Placements != 3 {
		t.Errorf("Placements = %d, want 3", st.Placements)
	}
}

func TestRejectsOversizedJob(t *testing.T) {
	_, _, err := Run(2, Config{Specs: []JobSpec{{CPU: 9, Mem: 1, Dur: sim.Micros(100)}}})
	if err == nil || !strings.Contains(err.Error(), "exceeds the agent inventory") {
		t.Fatalf("err = %v, want inventory rejection", err)
	}
}

func TestLossyNetwork(t *testing.T) {
	_, st := mustRun(t, 3, Config{
		Jobs: 10, Seed: 2,
		Fault: &cm5.FaultPlan{Seed: 42, DropProb: 0.03, DupProb: 0.03},
	})
	if st.Rel.Retransmits == 0 {
		t.Error("lossy network produced no retransmits")
	}
}

func TestCrashMigratesLeases(t *testing.T) {
	// Two agents, light load so the detector's interarrival mean stays
	// near the heartbeat period; agent 1 crashes while holding leases.
	specs := []JobSpec{
		{CPU: 2, Mem: 2, Dur: sim.Micros(6000)},
		{CPU: 2, Mem: 2, Dur: sim.Micros(6000)},
		{CPU: 2, Mem: 2, Dur: sim.Micros(6000)},
		{CPU: 2, Mem: 2, Dur: sim.Micros(6000)},
	}
	_, st := mustRun(t, 2, Config{
		Specs: specs, Seed: 3,
		Fault: &cm5.FaultPlan{Seed: 9, Crashes: []cm5.Crash{{Node: 1, At: sim.Time(2 * sim.Millisecond)}}},
	})
	if st.DeadDeclared == 0 {
		t.Error("crashed agent was never declared dead")
	}
	if st.Migrations == 0 && st.Expiries == 0 {
		t.Error("no lease was reclaimed off the crashed agent")
	}
	// The survivor must have run everything.
	for _, ev := range st.Record {
		if ev.Kind == EvDone && ev.Agent != 2 {
			t.Errorf("completion accepted from crashed agent: %v", ev)
		}
	}
	if !st.CrashedAt[1] || st.CrashedAt[2] {
		t.Errorf("CrashedAt = %v, want only agent 1", st.CrashedAt)
	}
}

func TestFlappingPartitionRecovers(t *testing.T) {
	// Agent 1 is cut off from the scheduler (both directions) while
	// holding a long job; the detector declares it dead mid-window and
	// readmits it on heal. One agent stays lightly loaded so heartbeat
	// interarrival stays near the configured period and phi trips well
	// inside the window.
	from, to := sim.Time(2*sim.Millisecond), sim.Time(14*sim.Millisecond)
	flap := &cm5.FaultPlan{Seed: 11, Partitions: []cm5.Partition{
		{Src: 1, Dst: 0, From: from, To: to},
		{Src: 0, Dst: 1, From: from, To: to},
	}}
	specs := []JobSpec{
		{CPU: 4, Mem: 4, Dur: sim.Micros(8000)},
		{CPU: 4, Mem: 4, Dur: sim.Micros(8000)},
		{CPU: 4, Mem: 4, Dur: sim.Micros(8000)},
	}
	_, st := mustRun(t, 3, Config{Specs: specs, Seed: 4, Fault: flap})
	if st.DeadDeclared == 0 {
		t.Error("partitioned agent was never declared dead")
	}
	if st.Recovered == 0 {
		t.Error("healed agent was never readmitted")
	}
	var deadEvents, aliveEvents int
	for _, ev := range st.Record {
		switch ev.Kind {
		case EvDead:
			deadEvents++
		case EvAlive:
			aliveEvents++
		}
	}
	if deadEvents == 0 || aliveEvents == 0 {
		t.Errorf("record has %d dead / %d alive transitions, want both > 0", deadEvents, aliveEvents)
	}
}

// TestShardEquivalence: result, control-plane record hash, and fault
// trace are bit-identical at shards 1, 2, and 4 — under chaos.
func TestShardEquivalence(t *testing.T) {
	run := func(shards int) (apps.Result, Stats) {
		return mustRun(t, 3, Config{
			Jobs: 10, Seed: 5, Shards: shards,
			Fault: &cm5.FaultPlan{
				Seed: 77, DropProb: 0.02, DupProb: 0.02,
				Partitions: []cm5.Partition{
					{Src: 2, Dst: 0, From: sim.Time(3 * sim.Millisecond), To: sim.Time(9 * sim.Millisecond)},
					{Src: 0, Dst: 2, From: sim.Time(3 * sim.Millisecond), To: sim.Time(9 * sim.Millisecond)},
				},
			},
			LeaseTimeout: sim.Micros(10000),
		})
	}
	seqRes, seqSt := run(1)
	for _, s := range []int{2, 4} {
		res, st := run(s)
		if res != seqRes {
			t.Errorf("result at shards=%d differs:\n got %+v\nwant %+v", s, res, seqRes)
		}
		if st.RecordHash != seqSt.RecordHash {
			t.Errorf("record hash at shards=%d = %#x, want %#x", s, st.RecordHash, seqSt.RecordHash)
		}
		if st.FaultHash != seqSt.FaultHash {
			t.Errorf("fault hash at shards=%d = %#x, want %#x", s, st.FaultHash, seqSt.FaultHash)
		}
		if len(st.Record) != len(seqSt.Record) {
			t.Errorf("record length at shards=%d = %d, want %d", s, len(st.Record), len(seqSt.Record))
		}
	}
}

// --- CheckInvariants unit tests on synthetic records ---

func TestCheckInvariantsViolations(t *testing.T) {
	cases := []struct {
		name string
		rec  []Event
		want string
	}{
		{"double-accept",
			[]Event{
				{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1},
				{T: 2, Kind: EvDone, Job: 0, Agent: 1, Epoch: 1},
				{T: 3, Kind: EvPlace, Job: 0, Agent: 2, Epoch: 2},
			},
			"placed again after its completion"},
		{"fencing-breach",
			[]Event{
				{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1},
				{T: 2, Kind: EvExpire, Job: 0, Agent: 1, Epoch: 1, Why: ReasonTimeout},
				{T: 3, Kind: EvPlace, Job: 0, Agent: 2, Epoch: 2},
				{T: 4, Kind: EvDone, Job: 0, Agent: 1, Epoch: 1},
			},
			"fencing breach"},
		{"dead-placement",
			[]Event{
				{T: 1, Kind: EvDead, Job: -1, Agent: 1},
				{T: 2, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1},
			},
			"declared dead"},
		{"epoch-regression",
			[]Event{
				{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 2},
				{T: 2, Kind: EvExpire, Job: 0, Agent: 1, Epoch: 2, Why: ReasonTimeout},
				{T: 3, Kind: EvPlace, Job: 0, Agent: 2, Epoch: 2},
			},
			"not monotonic"},
		{"time-regression",
			[]Event{
				{T: 5, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1},
				{T: 4, Kind: EvDone, Job: 0, Agent: 1, Epoch: 1},
			},
			"backwards"},
		{"valid-completion-fenced",
			[]Event{
				{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1},
				{T: 2, Kind: EvStale, Job: 0, Agent: 1, Epoch: 1},
			},
			"rejected as stale"},
		{"double-dead",
			[]Event{
				{T: 1, Kind: EvDead, Job: -1, Agent: 1},
				{T: 2, Kind: EvDead, Job: -1, Agent: 1},
			},
			"already dead"},
	}
	for _, tc := range cases {
		err := CheckInvariants(tc.rec, 1, 2, false)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckInvariantsAcceptsMigration(t *testing.T) {
	rec := []Event{
		{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1},
		{T: 2, Kind: EvDead, Job: -1, Agent: 1},
		// A reclaim may legally reference a dead agent's lease.
		{T: 2, Kind: EvExpire, Job: 0, Agent: 1, Epoch: 1, Why: ReasonDead},
		{T: 3, Kind: EvPlace, Job: 0, Agent: 2, Epoch: 2},
		// The old agent's stale completion is fenced.
		{T: 4, Kind: EvAlive, Job: -1, Agent: 1},
		{T: 5, Kind: EvStale, Job: 0, Agent: 1, Epoch: 1},
		{T: 6, Kind: EvDone, Job: 0, Agent: 2, Epoch: 2},
	}
	if err := CheckInvariants(rec, 1, 2, true); err != nil {
		t.Fatalf("legal migration record rejected: %v", err)
	}
}

func TestCheckInvariantsLiveness(t *testing.T) {
	rec := []Event{{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1}}
	if err := CheckInvariants(rec, 1, 1, true); err == nil ||
		!strings.Contains(err.Error(), "liveness") {
		t.Fatalf("err = %v, want liveness violation", err)
	}
	if err := CheckInvariants(rec, 1, 1, false); err != nil {
		t.Fatalf("safety-only check failed: %v", err)
	}
}

func TestRecordHashSensitivity(t *testing.T) {
	a := []Event{{T: 1, Kind: EvPlace, Job: 0, Agent: 1, Epoch: 1}}
	b := []Event{{T: 1, Kind: EvPlace, Job: 0, Agent: 2, Epoch: 1}}
	if RecordHash(a) == RecordHash(b) {
		t.Error("hash insensitive to agent")
	}
	if RecordHash(nil) != RecordHash([]Event{}) {
		t.Error("empty record hash unstable")
	}
}
