// Package threads is a simple, optimized, non-preemptive, user-level
// thread package for the nodes of the simulated machine, mirroring the one
// the paper built for the CM-5 SPARC nodes (section 3.1).
//
// Each node has a Scheduler with a ready queue and an idle loop that polls
// the network when no thread is runnable. Threads run to completion except
// when they suspend on a Mutex or Cond or voluntarily Yield. The package
// charges the paper's measured costs: creating a thread costs 7 us; a full
// context switch between two live contexts costs 52 us; starting a newly
// created thread from the idle loop or from the stack of a terminated
// thread is free beyond the creation cost — the "live-stack" optimization,
// which the statistics report because the paper tracks how often it
// applies.
//
// Execution contexts. Code runs either as a thread (with a descriptor,
// schedulable, may block) or as a handler on whatever context polled the
// network (no descriptor, must not block). Both are represented by Ctx;
// handler contexts have a nil Thread. Blocking operations panic when
// invoked from a handler context — exactly the Active Messages restriction
// that Optimistic Active Messages (package oam) exists to lift.
package threads
