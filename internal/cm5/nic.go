package cm5

// nic is a node's network interface: a bounded FIFO input queue plus a
// count of slots reserved by packets still in flight toward this node.
// Reserving at injection time gives lossless bounded buffering: a sender
// that cannot reserve a slot observes "network full" (and may block, drain,
// or abort — policy belongs to the layers above).
type nic struct {
	queue    []*Packet // FIFO; head at index 0 of the ring
	head     int
	count    int
	reserved int
	cap      int
}

// nicInitialRing bounds the first ring allocation: the ring starts
// small and doubles with occupancy, so memory tracks what a node
// actually buffers, not the configured capacity (deep-queue cost models
// would otherwise charge every node the worst case up front).
const nicInitialRing = 64

// newNIC builds a NIC with the given capacity. The ring itself is lazy —
// allocated by the first deliver and grown geometrically — so a node
// that sends, computes, or just exists never pays queue memory for
// packets it never receives.
func newNIC(capacity int) *nic {
	if capacity < 1 {
		panic("cm5: NIC capacity must be positive")
	}
	return &nic{cap: capacity}
}

// full reports whether a new injection toward this NIC would exceed the
// buffer (queued plus in-flight reservations).
func (n *nic) full() bool { return n.count+n.reserved >= n.cap }

// reserve claims a slot for an in-flight packet. Callers must check full
// first; over-reservation is a programming error.
func (n *nic) reserve() {
	if n.full() {
		panic("cm5: NIC reservation overflow")
	}
	n.reserved++
}

// forceReserve claims a slot without the capacity check. Used by the
// window barrier for cross-shard flights, whose admission was decided at
// injection time against the sender's snapshot view: near saturation that
// view can admit slightly more than cap, so the ring grows instead of
// panicking (occupancy above cap is transient and bounded by one window's
// cross-shard traffic).
func (n *nic) forceReserve() { n.reserved++ }

// deliver converts a reservation into a queued packet, growing the ring
// if force-reserved flights pushed occupancy past the nominal capacity.
func (n *nic) deliver(p *Packet) {
	if n.reserved <= 0 {
		panic("cm5: delivery without reservation")
	}
	n.reserved--
	if n.queue == nil {
		sz := n.cap
		if sz > nicInitialRing {
			sz = nicInitialRing
		}
		n.queue = make([]*Packet, sz)
	}
	if n.count == len(n.queue) {
		grown := make([]*Packet, 2*len(n.queue))
		for i := 0; i < n.count; i++ {
			grown[i] = n.queue[(n.head+i)%len(n.queue)]
		}
		n.queue = grown
		n.head = 0
	}
	n.queue[(n.head+n.count)%len(n.queue)] = p
	n.count++
}

// abandon releases a reservation without queueing anything: the in-flight
// packet was discarded by the fault layer.
func (n *nic) abandon() {
	if n.reserved <= 0 {
		panic("cm5: abandon without reservation")
	}
	n.reserved--
}

// pop removes and returns the packet at the head of the queue, or nil.
func (n *nic) pop() *Packet {
	if n.count == 0 {
		return nil
	}
	p := n.queue[n.head]
	n.queue[n.head] = nil
	n.head = (n.head + 1) % len(n.queue)
	n.count--
	return p
}

// pending reports the number of queued (already delivered) packets.
func (n *nic) pending() int { return n.count }
