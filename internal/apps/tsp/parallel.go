package tsp

import (
	"fmt"
	"math"

	"repro/internal/am"
	"repro/internal/apps"
	tspgen "repro/internal/apps/tsp/gen"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/reliable"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Compute-cost calibration. The paper's sequential C program solves the
// 12-city instance in 12.4 s.
var (
	// CostVisit is charged per branch-and-bound tree node.
	CostVisit = sim.Micros(3.7)
	// CostGenJob is charged per partial route the master generates.
	CostGenJob = sim.Micros(12)
	// CostPop is charged per queue pop in the GetJob procedure.
	CostPop = sim.Micros(2)
)

// Config parameterizes a run.
type Config struct {
	Cities int   // the paper's experiment uses 12
	Seed   int64 // instance and simulation seed
	// Shards selects the engine's shard count: 0 or 1 sequential,
	// negative auto (one per CPU), clamped to the node count. Results are
	// bit-identical at any value; only wall-clock time changes.
	Shards int
	// Optimistic selects the engine's speculative span scheduler instead
	// of lockstep windows when Shards resolves parallel (results stay
	// bit-identical; only wall-clock time changes).
	Optimistic bool
	// Strategy selects the OAM abort strategy for the ORPC variant
	// (default Rerun, the paper's prototype).
	Strategy oam.Strategy
	// Cores gives each simulated node this many cores (default 1).
	// Values > 1 route sync ORPC dispatches through the multiactive path
	// (oam.Options.Cores); TSP declares no compatibility matrix, so
	// handlers still serialize and results are unchanged.
	Cores int
	// Fault, if non-nil, injects the given deterministic fault plan into
	// the data network. Plans that lose packets require Reliable, or calls
	// hang; plans with crashes additionally require RunChaos, which knows
	// how to re-issue a dead slave's work.
	Fault *cm5.FaultPlan
	// Reliable, if non-nil, attaches the reliable transport with these
	// options so every message survives loss via ack/retransmit.
	Reliable *reliable.Options
	// Observe, if non-nil, is called once the universe (and, for the RPC
	// variants, the runtime — nil under AM) is built but before the SPMD
	// program starts, so an observer can attach its probes.
	Observe func(*am.Universe, *rpc.Runtime)
}

// SeqTime returns the simulated sequential running time implied by the
// cost constants: the Figure 2 normalization baseline.
func SeqTime(c SeqCounts) sim.Duration {
	return sim.Duration(c.Visits)*CostVisit + sim.Duration(c.Jobs)*CostGenJob
}

// nodeState is one node's share of the search.
type nodeState struct {
	best int64
}

// Run executes TSP with the given system on slaves+1 nodes (node 0 is
// the master). The answer is the optimal tour length, which branch and
// bound finds regardless of schedule — so it must match SolveSeq.
func Run(sys apps.System, slaves int, cfg Config) (apps.Result, error) {
	p := NewProblem(cfg.Cities, cfg.Seed)
	nodes := slaves + 1
	eng := apps.Engine(cfg.Seed, cfg.Shards, nodes, cfg.Optimistic)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, nodes, cm5.DefaultCostModel())
	u.Machine().SetFaultPlan(cfg.Fault)
	if cfg.Reliable != nil {
		reliable.Attach(u, *cfg.Reliable)
	}

	states := make([]*nodeState, nodes)
	for i := range states {
		states[i] = &nodeState{best: math.MaxInt64}
	}

	// Shared master queue.
	var (
		queue [][]uint8
		head  int
		done  bool
	)
	qmu := threads.NewMutex(u.Scheduler(0))
	qcv := threads.NewCond(qmu)

	type slaveAPI struct {
		getJob    func(c threads.Ctx) ([]uint8, bool)
		sendBest  func(c threads.Ctx, me int, tour int64)
		oams      func() uint64
		successes func() uint64
	}
	var api slaveAPI

	// masterGenerates runs on node 0 and fills the queue. Under AM it
	// pre-generates everything before servicing requests (the hand-coded
	// version's trick); under ORPC/TRPC it interleaves generation with
	// polling, which is what makes GetJob contend at high slave counts.
	var masterGenerate func(c threads.Ctx)

	var rtForObs *rpc.Runtime
	switch sys {
	case apps.AM:
		var replyH am.HandlerID
		type pending struct {
			route []uint8
			ok    bool
			flag  bool
		}
		slots := make([]*pending, nodes)
		for i := range slots {
			slots[i] = &pending{}
		}
		reqH := u.Register("tsp/getjob", func(c threads.Ctx, pkt *cm5.Packet) {
			// Runs on the master. The queue is complete before any
			// request is serviced, so no lock is needed.
			c.P.Charge(CostPop)
			var w [4]uint64
			var payload []byte
			if head < len(queue) {
				w[0] = 1
				payload = queue[head]
				head++
			}
			u.Endpoint(0).Send(c, pkt.Src, replyH, w, payload)
		})
		replyH = u.Register("tsp/jobreply", func(c threads.Ctx, pkt *cm5.Packet) {
			s := slots[c.Node().ID()]
			s.ok = pkt.W0 == 1
			s.route = append(s.route[:0], pkt.Payload...)
			s.flag = true
		})
		bestH := u.Register("tsp/best", func(c threads.Ctx, pkt *cm5.Packet) {
			ns := states[c.Node().ID()]
			if t := int64(pkt.W0); t < ns.best {
				ns.best = t
			}
		})
		api.getJob = func(c threads.Ctx) ([]uint8, bool) {
			me := c.Node().ID()
			s := slots[me]
			s.flag = false
			u.Endpoint(me).Send(c, 0, reqH, [4]uint64{}, nil)
			for !s.flag {
				u.Endpoint(me).Poll(c)
			}
			return s.route, s.ok
		}
		api.sendBest = func(c threads.Ctx, me int, tour int64) {
			for n := 0; n < nodes; n++ {
				if n != me {
					u.Endpoint(me).Send(c, n, bestH, [4]uint64{uint64(tour)}, nil)
				}
			}
		}
		api.oams = func() uint64 { return 0 }
		api.successes = func() uint64 { return 0 }
		masterGenerate = func(c threads.Ctx) {
			// Generate everything before accepting requests: requests
			// wait in the network interface meanwhile.
			for _, j := range p.Jobs() {
				c.P.Charge(CostGenJob)
				queue = append(queue, j)
			}
		}

	case apps.ORPC, apps.TRPC:
		mode := rpc.ORPC
		if sys == apps.TRPC {
			mode = rpc.TRPC
		}
		rt := rpc.New(u, rpc.Options{Mode: mode, OAM: oam.Options{Strategy: cfg.Strategy, Cores: cfg.Cores}})
		rtForObs = rt
		getJob := tspgen.DefineGetJob(rt, func(e *oam.Env, caller int) ([]byte, bool) {
			e.Lock(qmu)
			e.Await(qcv, func() bool { return head < len(queue) || done })
			e.Compute(CostPop)
			var route []byte
			ok := false
			if head < len(queue) {
				ok = true
				route = queue[head]
				head++
			}
			e.Unlock(qmu)
			return route, ok
		})
		best := tspgen.DefineBest(rt, func(e *oam.Env, caller int, tour int64) {
			ns := states[e.Node()]
			if tour < ns.best {
				ns.best = tour
			}
		})
		api.getJob = func(c threads.Ctx) ([]uint8, bool) {
			return getJob.Call(c, 0)
		}
		api.sendBest = func(c threads.Ctx, me int, tour int64) {
			for n := 0; n < nodes; n++ {
				if n != me {
					best.CallAsync(c, n, tour)
				}
			}
		}
		api.oams = func() uint64 { return getJob.Stats().OAMs + best.Stats().OAMs }
		api.successes = func() uint64 { return getJob.Stats().Successes + best.Stats().Successes }
		masterGenerate = func(c threads.Ctx) {
			ep := u.Endpoint(0)
			for _, j := range p.Jobs() {
				c.P.Charge(CostGenJob)
				qmu.Lock(c)
				queue = append(queue, j)
				qcv.Signal(c)
				qmu.Unlock(c)
				apps.Service(c, ep)
			}
			qmu.Lock(c)
			done = true
			qcv.Broadcast(c)
			qmu.Unlock(c)
		}

	default:
		return apps.Result{}, fmt.Errorf("tsp: unknown system %v", sys)
	}

	if cfg.Observe != nil {
		cfg.Observe(u, rtForObs)
	}
	elapsed, err := u.SPMD(func(c threads.Ctx, me int) {
		if me == 0 {
			masterGenerate(c)
			return // the scheduler keeps serving requests
		}
		ns := states[me]
		ep := u.Endpoint(me)
		for {
			route, ok := api.getJob(c)
			if !ok {
				return
			}
			nb, _ := p.Expand(route, ns.best, func(n int) int64 {
				c.P.Charge(sim.Duration(n) * CostVisit)
				apps.Service(c, ep)
				return ns.best
			})
			if nb < ns.best {
				ns.best = nb
				api.sendBest(c, me, nb)
			}
		}
	})
	if err != nil {
		return apps.Result{}, fmt.Errorf("tsp/%v: %w", sys, err)
	}

	// The optimum is the minimum over every node's view.
	best := int64(math.MaxInt64)
	for _, ns := range states {
		if ns.best < best {
			best = ns.best
		}
	}
	res := apps.Result{
		System:  sys,
		Nodes:   nodes,
		Elapsed: sim.Duration(elapsed),
		Answer:  uint64(best),
	}
	apps.FillResult(&res, u, api.oams(), api.successes())
	return res, nil
}
