package exp

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// BudgetRow is one point of the handler-budget experiment.
type BudgetRow struct {
	Budget     sim.Duration // 0 = unlimited (the paper's prototype)
	ShortP50   sim.Duration // median round trip of the short calls
	ShortWorst sim.Duration
	LongTotal  sim.Duration // completion time of all long calls
	TooLong    uint64       // aborts due to the budget
}

// Budget demonstrates the "runs too long" check the paper describes but
// leaves unimplemented (section 3.3): a server receives a mix of long
// (2 ms) and short (null) calls. Without a budget, long calls monopolize
// the handler and short calls queue behind them; with a budget, long
// executions abort to threads and short calls keep their microsecond
// latency.
func Budget() []BudgetRow {
	budgets := []sim.Duration{0, sim.Micros(100), sim.Micros(25)}
	rows := make([]BudgetRow, len(budgets))
	forEach(len(budgets), func(i int) error {
		rows[i] = runBudget(budgets[i])
		return nil
	})
	return rows
}

func runBudget(budget sim.Duration) BudgetRow {
	const (
		longCalls  = 10
		shortCalls = 40
		longWork   = 2000 // us of compute per long call
	)
	eng := sim.New(4)
	defer eng.Shutdown()
	u := am.NewUniverse(eng, 3, cm5.DefaultCostModel())
	rt := rpc.New(u, rpc.Options{
		Mode: rpc.ORPC,
		OAM:  oam.Options{Strategy: oam.Rerun, HandlerBudget: budget},
	})
	long := rt.Define("long", func(e *oam.Env, caller int, arg []byte) []byte {
		for i := 0; i < 20; i++ {
			e.Compute(sim.Micros(longWork / 20))
			// As a thread this shares the processor between chunks; in a
			// handler it cannot — handlers are not schedulable.
			e.Service()
		}
		return nil
	})
	short := rt.Define("short", func(e *oam.Env, caller int, arg []byte) []byte {
		return nil
	})
	var shortTimes []sim.Duration
	var longDone sim.Time
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		switch node {
		case 1: // the bulk client
			for i := 0; i < longCalls; i++ {
				long.Call(c, 0, nil)
			}
			longDone = c.P.Now()
		case 2: // the latency-sensitive client
			for i := 0; i < shortCalls; i++ {
				start := c.P.Now()
				short.Call(c, 0, nil)
				shortTimes = append(shortTimes, c.P.Now().Sub(start))
				c.P.Charge(sim.Micros(400)) // think time
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("exp: budget run deadlocked: %v", err))
	}
	p50, worst := percentiles(shortTimes)
	st := rt.Dispatcher().Stats()
	return BudgetRow{
		Budget:     budget,
		ShortP50:   p50,
		ShortWorst: worst,
		LongTotal:  sim.Duration(longDone),
		TooLong:    st.ByReason[oam.TooLong],
	}
}

func percentiles(ds []sim.Duration) (p50, worst sim.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]sim.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ { // insertion sort; n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2], sorted[len(sorted)-1]
}

// BudgetTable formats the handler-budget experiment.
func BudgetTable() *Table {
	t := &Table{
		Title: "Handler time budget (the paper's 'runs too long' check, section 3.3)",
		Columns: []string{"Budget(us)", "Short p50(us)", "Short worst(us)",
			"Long total(ms)", "TooLong aborts"},
		Notes: []string{
			"0 = unlimited, the paper's prototype: long calls monopolize the handler",
		},
	}
	for _, r := range Budget() {
		bud := "unlimited"
		if r.Budget > 0 {
			bud = us(r.Budget)
		}
		t.Rows = append(t.Rows, []string{
			bud, us(r.ShortP50), us(r.ShortWorst),
			fmt.Sprintf("%.2f", float64(r.LongTotal)/1e6), u64(r.TooLong),
		})
	}
	return t
}

// BufferRow is one point of the buffer-depth experiment.
type BufferRow struct {
	QueueCap   int
	PollEvery  sim.Duration
	Elapsed    sim.Duration
	DrainSpins uint64
}

// Buffering explores the interaction the paper points out between
// network-interface buffering and polling frequency: the CM-5's deep
// buffers let applications poll infrequently, while on machines with
// shallow buffers (Alewife) infrequent polling blocks senders almost
// immediately. A producer streams small messages to a consumer that
// polls only between compute quanta.
func Buffering() []BufferRow {
	caps := []int{2, 8, 128}
	quanta := []sim.Duration{sim.Micros(20), sim.Micros(200)}
	rows := make([]BufferRow, len(caps)*len(quanta))
	forEach(len(rows), func(i int) error {
		rows[i] = runBuffering(caps[i/len(quanta)], quanta[i%len(quanta)])
		return nil
	})
	return rows
}

func runBuffering(queueCap int, quantum sim.Duration) BufferRow {
	const messages = 300
	eng := sim.New(6)
	defer eng.Shutdown()
	cost := cm5.DefaultCostModel()
	cost.NICQueueCap = queueCap
	u := am.NewUniverse(eng, 2, cost)
	received := 0
	h := u.Register("sink", func(c threads.Ctx, pkt *cm5.Packet) { received++ })
	elapsed, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 0 {
			for i := 0; i < messages; i++ {
				ep.Send(c, 1, h, [4]uint64{uint64(i)}, nil)
			}
			return
		}
		// Consumer: compute quanta with polling in between — "carefully
		// tuned polling" whose tuning the buffer depth forgives or not.
		for received < messages {
			c.P.Charge(quantum)
			ep.PollAll(c)
		}
	})
	if err != nil {
		panic(fmt.Sprintf("exp: buffering run deadlocked: %v", err))
	}
	return BufferRow{
		QueueCap:   queueCap,
		PollEvery:  quantum,
		Elapsed:    sim.Duration(elapsed),
		DrainSpins: u.Stats().DrainSpins,
	}
}

// BufferingTable formats the buffer-depth experiment.
func BufferingTable() *Table {
	t := &Table{
		Title:   "NIC buffering vs polling frequency (section 2's CM-5/Alewife contrast)",
		Columns: []string{"Queue cap", "Poll every(us)", "Elapsed(ms)", "Sender drain spins"},
		Notes: []string{
			"shallow buffers + infrequent polling stall the sender (drain spins explode)",
		},
	}
	for _, r := range Buffering() {
		t.Rows = append(t.Rows, []string{
			itoa(r.QueueCap), us(r.PollEvery),
			fmt.Sprintf("%.2f", float64(r.Elapsed)/1e6), u64(r.DrainSpins),
		})
	}
	return t
}
