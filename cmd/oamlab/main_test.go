package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeTable1 golden-checks the header of a cheap experiment.
func TestSmokeTable1(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "Table 1") {
		t.Errorf("missing table title:\n%s", got)
	}
	if !strings.Contains(errb.String(), "[table1 done in ") {
		t.Errorf("missing completion line:\n%s", errb.String())
	}
}

// TestSmokeCSV: CSV mode emits a comma-joined header row.
func TestSmokeCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "-csv", "abortcost"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Case,Cost (us)") {
		t.Errorf("missing CSV header:\n%s", out.String())
	}
}

// TestSmokeProfiles: -cpuprofile and -memprofile write non-empty pprof
// files covering the run.
func TestSmokeProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "-cpuprofile", cpu, "-memprofile", mem, "table1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestSmokeProfileBadPath: an unwritable profile path fails cleanly.
func TestSmokeProfileBadPath(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "-cpuprofile", t.TempDir() + "/no/such/dir/cpu.pprof", "table1"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cpuprofile") {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestSmokeUnknownExperiment: bad names exit 2 without output.
func TestSmokeUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown experiment "nosuch"`) {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestUnknownListsSubcommands: the unknown-name diagnostic names every
// registered subcommand (including trace and metrics) so a typo is
// self-correcting.
func TestUnknownListsSubcommands(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	diag := errb.String()
	for _, name := range subcommands {
		if !strings.Contains(diag, name) {
			t.Errorf("diagnostic does not list subcommand %q:\n%s", name, diag)
		}
	}
}

// TestSmokeTrace: the trace subcommand writes a valid Chrome trace-event
// JSON file with events for every node.
func TestSmokeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "trace", "tsp", "-p", "4", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if !strings.Contains(errb.String(), "perfetto") {
		t.Errorf("missing Perfetto pointer:\n%s", errb.String())
	}
}

// TestSmokeMetrics: the metrics subcommand prints the instrument
// registry and the virtual-time profile.
func TestSmokeMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-quick", "metrics", "triangle", "-p", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"counter am/handlers_run", "gauge", "hist", "virtual CPU profile:"} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics output missing %q:\n%s", want, got)
		}
	}
}

// TestObserveBadApp: trace with a bogus app fails with a diagnostic.
func TestObserveBadApp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"trace", "nosuch"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), `unknown app "nosuch"`) {
		t.Errorf("missing diagnostic:\n%s", errb.String())
	}
}

// TestSmokeChaos runs the fault-injection sweep at quick scale and
// golden-checks both tables' headers and that every row validated.
func TestSmokeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep simulates several lossy runs")
	}
	var out, errb bytes.Buffer
	if code := realMain([]string{"-quick", "chaos"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"Chaos sweep",
		"Drop%  Crashes",
		"Retx",
		"GaveUp",
		"Per-node fault and recovery counters",
		"(crashed)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NO") {
		t.Errorf("a chaos row failed validation:\n%s", got)
	}
}
