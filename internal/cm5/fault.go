package cm5

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// FaultPlan is a seeded, deterministic schedule of data-network faults.
// The zero value (and a nil plan) injects nothing: every probability is 0,
// every schedule empty, so existing experiments stay bit-identical. All
// randomness is drawn from a dedicated source seeded by Seed, never from
// the engine's RNG, so installing a do-nothing plan does not perturb the
// wire-jitter draw stream either.
//
// Faults apply to the data network only. The control network (barriers,
// reductions) models the CM-5's separate, far more conservative fabric and
// stays lossless.
type FaultPlan struct {
	Seed int64 // seeds the fault RNG (drop, duplicate, jitter draws)

	DropProb    float64      // per-packet loss probability, all links
	DupProb     float64      // per-packet duplication probability
	ExtraJitter sim.Duration // extra uniform [0, ExtraJitter) delivery latency

	Links      []LinkFault  // per-link drop-probability overrides
	Partitions []Partition  // timed windows during which a link drops everything
	Crashes    []Crash      // node fail-stop schedule
	Slow       []SlowWindow // timed windows of extra per-node delivery latency
}

// LinkFault overrides the drop probability on one directed link.
type LinkFault struct {
	Src, Dst int
	DropProb float64
}

// Partition blackholes the directed link Src->Dst during [From, To).
// Src or Dst may be -1 to match any node.
type Partition struct {
	Src, Dst int
	From, To sim.Time
}

// Crash fail-stops a node at time At: every packet to or from it is
// discarded from then on (including packets already in flight toward it).
// The node's simulated process keeps running — a crashed machine cannot
// stop a coroutine — so application code that should honor the crash
// checks Node.Crashed and returns.
type Crash struct {
	Node int
	At   sim.Time
}

// SlowWindow adds Extra delivery latency to every packet addressed to
// Node during [From, To).
type SlowWindow struct {
	Node     int
	From, To sim.Time
	Extra    sim.Duration
}

// FaultKind labels one injected fault in the trace.
type FaultKind uint8

const (
	FaultDrop          FaultKind = iota // random per-packet loss
	FaultPartitionDrop                  // lost to a partition window
	FaultBlackhole                      // sender or receiver already crashed
	FaultLateDrop                       // receiver crashed while the packet was in flight
	FaultDuplicate                      // second copy delivered
	FaultSlow                           // slow-window latency added
	FaultCrash                          // node fail-stop instant
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultPartitionDrop:
		return "partition-drop"
	case FaultBlackhole:
		return "blackhole"
	case FaultLateDrop:
		return "late-drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultSlow:
		return "slow"
	case FaultCrash:
		return "crash"
	}
	return "unknown"
}

// FaultEvent records one injected fault. For FaultCrash, Src == Dst ==
// the crashed node.
type FaultEvent struct {
	T    sim.Time
	Kind FaultKind
	Src  int
	Dst  int
}

// FaultStats aggregates injected-fault counters across the machine.
type FaultStats struct {
	Dropped        uint64 // random per-packet losses
	PartitionDrops uint64 // losses inside partition windows
	Blackholed     uint64 // packets to/from an already-crashed node
	LateDrops      uint64 // in-flight packets whose receiver crashed first
	Duplicated     uint64 // extra copies delivered
	Slowed         uint64 // deliveries delayed by a slow window
	Crashes        uint64 // crash events fired
}

// Lost sums every way a packet can vanish.
func (s FaultStats) Lost() uint64 {
	return s.Dropped + s.PartitionDrops + s.Blackholed + s.LateDrops
}

// NodeFaultStats attributes faults to individual nodes: losses and
// duplicates to the sending node, blackholes and late drops to the
// crashed node they died at.
type NodeFaultStats struct {
	Dropped    uint64 // packets this node sent that the network lost
	Duplicated uint64 // packets this node sent that were duplicated
	Blackholed uint64 // packets discarded because this node crashed
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// faultState is the installed plan plus its runtime bookkeeping. All
// randomness is drawn from per-flight counter-seeded streams (see
// flightRNG), so a draw's value depends only on the flight's identity,
// and the mutable accounting (stats, per-node counters, the event trace)
// lives in the per-shard machine state, merged canonically at read time.
// What remains here is the immutable plan plus the crash flags, which
// flip only at crash globals — between windows — and are therefore safe
// to read from any shard mid-window.
type faultState struct {
	plan     FaultPlan
	linkDrop map[[2]int]float64
	crashed  []bool
}

// recordFault appends one fault to this shard's slice of the trace.
func (ms *machineShard) recordFault(ev FaultEvent) {
	ms.fevents = append(ms.fevents, ev)
}

// faultNode returns this shard's counters for node. The table is a map
// keyed by node, not an n-sized array: per-node fault attribution only
// pays for nodes that actually appear in fault events, so one crash in a
// 100k-node machine costs one entry, not 100k.
func (ms *machineShard) faultNode(node int) *NodeFaultStats {
	if ms.fperNode == nil {
		ms.fperNode = make(map[int32]*NodeFaultStats)
	}
	s := ms.fperNode[int32(node)]
	if s == nil {
		s = &NodeFaultStats{}
		ms.fperNode[int32(node)] = s
	}
	return s
}

// dropProb returns the effective loss probability for the link src->dst.
func (f *faultState) dropProb(src, dst int) float64 {
	if f.linkDrop != nil {
		if p, ok := f.linkDrop[[2]int{src, dst}]; ok {
			return p
		}
	}
	return f.plan.DropProb
}

func (f *faultState) partitioned(now sim.Time, src, dst int) bool {
	for _, w := range f.plan.Partitions {
		if (w.Src == -1 || w.Src == src) && (w.Dst == -1 || w.Dst == dst) &&
			now >= w.From && now < w.To {
			return true
		}
	}
	return false
}

// lossKind decides, at injection time, whether the packet is lost and why.
// Crash and partition checks draw no randomness; the drop roll happens
// only when the effective probability is positive. Draws come from the
// flight's own stream, in a fixed order (loss, then — for delivered
// packets — jitter, duplicate, duplicate jitter), so the outcome is a
// pure function of (plan, src, dst, attempt, time).
func (f *faultState) lossKind(fr *flightRNG, now sim.Time, src, dst int) (FaultKind, bool) {
	if f.crashed[src] || f.crashed[dst] {
		return FaultBlackhole, true
	}
	if f.partitioned(now, src, dst) {
		return FaultPartitionDrop, true
	}
	if p := f.dropProb(src, dst); p > 0 && fr.float64() < p {
		return FaultDrop, true
	}
	return 0, false
}

// extraLatency returns the additional delivery latency for a packet to dst
// injected now: slow-window extras (recorded into the sender's shard)
// plus an ExtraJitter draw from the flight's stream.
func (f *faultState) extraLatency(fr *flightRNG, ms *machineShard, now sim.Time, src, dst int) sim.Duration {
	var extra sim.Duration
	for _, w := range f.plan.Slow {
		if w.Node == dst && now >= w.From && now < w.To {
			extra += w.Extra
			ms.fstats.Slowed++
			ms.recordFault(FaultEvent{T: now, Kind: FaultSlow, Src: src, Dst: dst})
		}
	}
	if f.plan.ExtraJitter > 0 {
		extra += sim.Duration(fr.int63n(int64(f.plan.ExtraJitter)))
	}
	return extra
}

func (f *faultState) duplicate(fr *flightRNG) bool {
	return f.plan.DupProb > 0 && fr.float64() < f.plan.DupProb
}

// SetFaultPlan installs a fault plan on the machine's data network. Call
// it once, before the simulation starts (crash schedules are posted as
// global control events at install time). A nil plan — the default —
// means a perfect network.
func (m *Machine) SetFaultPlan(plan *FaultPlan) {
	if plan == nil {
		m.fault = nil
		return
	}
	f := &faultState{
		plan:    *plan,
		crashed: make([]bool, len(m.nodes)),
	}
	if len(plan.Links) > 0 {
		f.linkDrop = make(map[[2]int]float64, len(plan.Links))
		for _, l := range plan.Links {
			f.linkDrop[[2]int{l.Src, l.Dst}] = l.DropProb
		}
	}
	for _, cr := range plan.Crashes {
		if cr.Node < 0 || cr.Node >= len(m.nodes) {
			panic(fmt.Sprintf("cm5: crash schedule names node %d of %d", cr.Node, len(m.nodes)))
		}
		cr := cr
		// A crash is a global control transition: at its instant it fires
		// before every same-time delivery and ordinary event, on any
		// shard, which pins its place in the total event order whatever
		// the shard count. Crash keys sort below collective releases.
		m.eng.AtGlobal(cr.At, uint64(cr.Node), func() {
			if f.crashed[cr.Node] {
				return
			}
			f.crashed[cr.Node] = true
			m.shards[0].fstats.Crashes++
			m.shards[0].recordFault(FaultEvent{T: cr.At, Kind: FaultCrash, Src: cr.Node, Dst: cr.Node})
		})
	}
	m.fault = f
}

// FaultStats returns the machine-wide injected-fault counters (zero when
// no plan is installed), summed across shards.
func (m *Machine) FaultStats() FaultStats {
	var out FaultStats
	for i := range m.shards {
		s := &m.shards[i].fstats
		out.Dropped += s.Dropped
		out.PartitionDrops += s.PartitionDrops
		out.Blackholed += s.Blackholed
		out.LateDrops += s.LateDrops
		out.Duplicated += s.Duplicated
		out.Slowed += s.Slowed
		out.Crashes += s.Crashes
	}
	return out
}

// NodeFaults returns the fault counters attributed to node i, summed
// across shards.
func (m *Machine) NodeFaults(i int) NodeFaultStats {
	var out NodeFaultStats
	for s := range m.shards {
		if pn := m.shards[s].fperNode[int32(i)]; pn != nil {
			out.Dropped += pn.Dropped
			out.Duplicated += pn.Duplicated
			out.Blackholed += pn.Blackholed
		}
	}
	return out
}

// FaultEvents returns the record of every injected fault in canonical
// (time, src, dst, kind) order. The canonical order — rather than raw
// recording order — is what both the sequential and the sharded kernel
// expose, so the trace (and its hash) is shard-count-independent.
func (m *Machine) FaultEvents() []FaultEvent {
	n := 0
	for i := range m.shards {
		n += len(m.shards[i].fevents)
	}
	if n == 0 {
		return nil
	}
	out := make([]FaultEvent, 0, n)
	for i := range m.shards {
		out = append(out, m.shards[i].fevents...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Kind < b.Kind
	})
	return out
}

// FaultTraceHash folds the canonical fault-event record into a single
// FNV-1a hash: two runs with the same seed and the same plan must agree
// on it, at any shard count.
func (m *Machine) FaultTraceHash() uint64 {
	h := uint64(fnvOffset64)
	for _, ev := range m.FaultEvents() {
		for _, v := range [4]uint64{uint64(ev.T), uint64(ev.Kind), uint64(ev.Src), uint64(ev.Dst)} {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xff
				h *= fnvPrime64
			}
		}
	}
	return h
}

// Crashed reports whether node i has fail-stopped.
func (m *Machine) Crashed(i int) bool {
	return m.fault != nil && m.fault.crashed[i]
}

// Crashed reports whether this node has fail-stopped.
func (n *Node) Crashed() bool { return n.m.Crashed(n.id) }
