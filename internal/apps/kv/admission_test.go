package kv_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/kv"
	"repro/internal/cm5"
	"repro/internal/sim"
)

// TestShedExactWhilePartitioned overlaps the two failure modes the
// accounting has to keep apart: a tiny admission budget sheds requests
// while a mid-run partition cuts every client off from server 0, so the
// same client can be backing off from a shed verdict on one request and
// timing out behind the partition on another. The per-client identity —
// every arrival classified exactly once — must hold through both.
func TestShedExactWhilePartitioned(t *testing.T) {
	cfg := kv.Config{
		System:   apps.ORPC,
		Seed:     23,
		Clients:  16,
		Duration: sim.Micros(10000),
		RateX:    3,
		Budget:   2,
		Fault: &cm5.FaultPlan{
			Seed: 9,
			Partitions: []cm5.Partition{
				{Src: -1, Dst: 0, From: sim.Time(sim.Micros(2000)), To: sim.Time(sim.Micros(6000))},
				{Src: 0, Dst: -1, From: sim.Time(sim.Micros(2000)), To: sim.Time(sim.Micros(6000))},
			},
		},
	}
	_, st, err := kv.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.CheckInvariants(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fault.PartitionDrops == 0 {
		t.Fatal("the partition never dropped anything")
	}
	if st.TimeoutGiveUps == 0 {
		t.Fatal("no client timed out behind the partition")
	}
	if st.Sheds == 0 {
		t.Fatal("the admission budget never shed")
	}
	// The totals must also reconcile globally: nothing double-counted
	// across the overlap of the two give-up modes.
	if st.Arrivals != st.OK+st.Drops+st.ShedGiveUps+st.TimeoutGiveUps {
		t.Fatalf("global accounting broken: %d arrivals vs %d+%d+%d+%d",
			st.Arrivals, st.OK, st.Drops, st.ShedGiveUps, st.TimeoutGiveUps)
	}
}

// TestRetryAfterFullQueue drives a one-slot admission budget far past
// saturation: sheds must carry the retry-after hint (clients observably
// wait on it), some clients must exhaust their shed retries, and yet the
// service keeps real goodput and exact books through the whole epoch.
func TestRetryAfterFullQueue(t *testing.T) {
	cfg := kv.Config{
		System:      apps.ORPC,
		Seed:        31,
		Clients:     24,
		Duration:    sim.Micros(10000),
		RateX:       4,
		Budget:      1,
		ShedRetries: 2,
	}
	_, st, err := kv.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.CheckInvariants(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sheds == 0 {
		t.Fatal("a one-slot budget at 4x load never shed")
	}
	if st.ShedWaits == 0 {
		t.Fatal("no client honored a retry-after hint")
	}
	if st.ShedGiveUps == 0 {
		t.Fatal("no client exhausted its shed retries despite the full-queue epoch")
	}
	if st.OK == 0 {
		t.Fatal("the service made no goodput at all under shedding")
	}
}

// TestHotKeySkew: a Zipf-skewed key draw concentrates load on server 0
// (which owns the hottest key), so that shard sheds and serves far more
// than its siblings while the cold shards stay comfortable — admission
// control is per-server, not global.
func TestHotKeySkew(t *testing.T) {
	cfg := kv.Config{
		System:   apps.ORPC,
		Seed:     41,
		Clients:  24,
		Keys:     64,
		ZipfS:    1.4,
		Duration: sim.Micros(10000),
		RateX:    2,
		Budget:   4,
	}
	_, st, err := kv.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.CheckInvariants(&st); err != nil {
		t.Fatal(err)
	}
	hot := st.PerServer[0].Admitted + st.PerServer[0].Shed
	for i := 1; i < len(st.PerServer); i++ {
		cold := st.PerServer[i].Admitted + st.PerServer[i].Shed
		if hot < cold*3/2 {
			t.Fatalf("server 0 (%d requests) not hotter than server %d (%d requests)",
				hot, i, cold)
		}
	}
	if st.PerServer[0].Shed == 0 {
		t.Fatal("the hot shard never shed")
	}
}
