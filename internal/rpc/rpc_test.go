package rpc

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/sim"
	"repro/internal/threads"
)

func newRT(t *testing.T, n int, opts Options) *Runtime {
	t.Helper()
	eng := sim.New(17)
	u := am.NewUniverse(eng, n, cm5.DefaultCostModel())
	t.Cleanup(eng.Shutdown)
	return New(u, opts)
}

// TestNullCallBothModes checks the remote increment works and measures
// the Table 1 "no thread running" round-trip times.
func TestNullCallBothModes(t *testing.T) {
	times := map[Mode]sim.Duration{}
	for _, mode := range []Mode{ORPC, TRPC} {
		rt := newRT(t, 2, Options{Mode: mode})
		counter := 0
		inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
			counter++
			return nil
		})
		var rtt sim.Duration
		_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
			if node != 0 {
				return // node 1 serves from its scheduler loop
			}
			start := c.P.Now()
			inc.Call(c, 1, nil)
			rtt = c.P.Now().Sub(start)
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if counter != 1 {
			t.Fatalf("%v: counter = %d", mode, counter)
		}
		times[mode] = rtt
	}
	// Table 1, "no thread running": ORPC ~14us, TRPC ~21us (ORPC + 7us
	// thread creation via the live-stack path).
	if times[ORPC] < sim.Micros(10) || times[ORPC] > sim.Micros(18) {
		t.Errorf("ORPC null RTT = %v, want ~14us", times[ORPC])
	}
	if d := times[TRPC] - times[ORPC]; d < sim.Micros(6) || d > sim.Micros(9) {
		t.Errorf("TRPC-ORPC gap = %v, want ~7us (thread create, live stack)", d)
	}
}

// TestBusyServerGap reproduces Table 1 "some thread running": the gap
// between TRPC and ORPC grows to ~60us (create + full switch).
func TestBusyServerGap(t *testing.T) {
	times := map[Mode]sim.Duration{}
	for _, mode := range []Mode{ORPC, TRPC} {
		rt := newRT(t, 2, Options{Mode: mode})
		done := false
		inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
			done = true
			return nil
		})
		var rtt sim.Duration
		_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
			if node == 1 {
				// Busy server: tight poll-and-yield loop.
				ep := rt.Universe().Endpoint(1)
				for !done {
					ep.Poll(c)
					c.S.Yield(c)
				}
				return
			}
			start := c.P.Now()
			inc.Call(c, 1, nil)
			rtt = c.P.Now().Sub(start)
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		times[mode] = rtt
	}
	if d := times[TRPC] - times[ORPC]; d < sim.Micros(55) || d > sim.Micros(65) {
		t.Errorf("busy-server TRPC-ORPC gap = %v, want ~59us (create + switch)", d)
	}
	if times[ORPC] > sim.Micros(20) {
		t.Errorf("busy-server ORPC RTT = %v, want ~14us (unaffected by running thread)", times[ORPC])
	}
}

func TestArgsAndResults(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	add := rt.Define("add", func(e *oam.Env, caller int, arg []byte) []byte {
		d := NewDec(arg)
		a, b := d.I64(), d.I64()
		d.Done()
		out := NewEnc(8)
		out.I64(a + b)
		return out.Bytes()
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		arg := NewEnc(16)
		arg.I64(40)
		arg.I64(2)
		rep := NewDec(add.Call(c, 1, arg.Bytes()))
		if got := rep.I64(); got != 42 {
			t.Errorf("add = %d, want 42", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBulkArgs exercises the scopy path in both directions.
func TestBulkArgs(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	rev := rt.Define("reverse", func(e *oam.Env, caller int, arg []byte) []byte {
		d := NewDec(arg)
		buf := d.Buf()
		d.Done()
		out := make([]byte, len(buf))
		for i, b := range buf {
			out[len(buf)-1-i] = b
		}
		enc := NewEnc(len(out) + 4)
		enc.Buf(out)
		return enc.Bytes()
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		data := make([]byte, 1000)
		for i := range data {
			data[i] = byte(i % 256)
		}
		arg := NewEnc(len(data) + 4)
		arg.Buf(data)
		rep := NewDec(rev.Call(c, 1, arg.Bytes()))
		out := rep.Buf()
		for i := range out {
			if out[i] != data[len(data)-1-i] {
				t.Fatalf("byte %d wrong", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Universe().Stats().BulkSends != 2 {
		t.Fatalf("BulkSends = %d, want 2", rt.Universe().Stats().BulkSends)
	}
}

func TestAsyncCall(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	var got []uint64
	sink := rt.DefineAsync("sink", func(e *oam.Env, caller int, arg []byte) []byte {
		d := NewDec(arg)
		got = append(got, d.U64())
		d.Done()
		return nil
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		for i := uint64(0); i < 10; i++ {
			arg := NewEnc(8)
			arg.U64(i)
			sink.CallAsync(c, 1, arg.Bytes())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d async calls, want 10", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order violated: %v", got)
		}
	}
	if st := sink.Stats(); st.OAMs != 10 || st.Successes != 10 {
		t.Fatalf("stats %+v", st)
	}
}

// TestBlockingProcPromotes: a procedure that must wait for a condition
// blocks under ORPC by promotion, and the reply arrives after the
// condition becomes true.
func TestBlockingProcPromotes(t *testing.T) {
	for _, mode := range []Mode{ORPC, TRPC} {
		rt := newRT(t, 2, Options{Mode: mode})
		s1 := rt.Universe().Scheduler(1)
		mu := threads.NewMutex(s1)
		cv := threads.NewCond(mu)
		ready := false
		get := rt.Define("get", func(e *oam.Env, caller int, arg []byte) []byte {
			e.Lock(mu)
			e.Await(cv, func() bool { return ready })
			e.Unlock(mu)
			out := NewEnc(8)
			out.U64(77)
			return out.Bytes()
		})
		var gotAt sim.Time
		var setAt sim.Time
		_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
			if node == 1 {
				// Poll the request in while the condition is still false,
				// so the optimistic attempt must abort.
				ep := rt.Universe().Endpoint(1)
				for get.Stats().OAMs == 0 && get.Stats().Threads == 0 {
					ep.Poll(c)
				}
				c.P.Charge(sim.Micros(500))
				mu.Lock(c)
				ready = true
				setAt = c.P.Now()
				cv.Signal(c)
				mu.Unlock(c)
				return
			}
			rep := NewDec(get.Call(c, 1, nil))
			if rep.U64() != 77 {
				t.Errorf("%v: wrong reply", mode)
			}
			gotAt = c.P.Now()
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if gotAt < setAt {
			t.Fatalf("%v: reply at %v before condition set at %v", mode, gotAt, setAt)
		}
		if mode == ORPC {
			if st := get.Stats(); st.OAMs != 1 || st.Promoted != 1 || st.Successes != 0 {
				t.Fatalf("stats %+v", st)
			}
		}
	}
}

// TestNackRetry: under the Nack strategy a blocked call is refused and
// transparently retried until it succeeds.
func TestNackRetry(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC, OAM: oam.Options{Strategy: oam.Nack}})
	s1 := rt.Universe().Scheduler(1)
	mu := threads.NewMutex(s1)
	hits := 0
	poke := rt.Define("poke", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Lock(mu)
		hits++
		e.Unlock(mu)
		return nil
	})
	var unlocked sim.Time
	var doneAt sim.Time
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node == 1 {
			mu.Lock(c)
			// Hold the lock and poll, so the attempt arrives while the
			// lock is held and is nacked at least once.
			ep := rt.Universe().Endpoint(1)
			for poke.Stats().Nacks == 0 {
				ep.Poll(c)
			}
			c.P.Charge(sim.Micros(100))
			mu.Unlock(c)
			unlocked = c.P.Now()
			return
		}
		poke.Call(c, 1, nil)
		doneAt = c.P.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want exactly 1", hits)
	}
	st := poke.Stats()
	if st.Nacks == 0 {
		t.Fatalf("expected nacks, stats %+v", st)
	}
	if st.Calls != st.Nacks+1 {
		t.Fatalf("calls = %d, nacks = %d: retry accounting off", st.Calls, st.Nacks)
	}
	if doneAt < unlocked {
		t.Fatalf("call done at %v before lock released at %v", doneAt, unlocked)
	}
}

// TestManyClientsOneServer drives contention: all clients increment a
// locked counter on node 0; the final count must be exact in both modes.
func TestManyClientsOneServer(t *testing.T) {
	for _, mode := range []Mode{ORPC, TRPC} {
		rt := newRT(t, 8, Options{Mode: mode})
		s0 := rt.Universe().Scheduler(0)
		mu := threads.NewMutex(s0)
		count := 0
		inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
			e.Lock(mu)
			e.Compute(sim.Micros(2))
			count++
			e.Unlock(mu)
			return nil
		})
		_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				return
			}
			for i := 0; i < 20; i++ {
				inc.Call(c, 0, nil)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if count != 7*20 {
			t.Fatalf("%v: count = %d, want 140", mode, count)
		}
	}
}

// TestSchedulingPolicy: back-of-queue must also work (the paper measured
// it as uniformly worse, but it has to be correct).
func TestSchedulingPolicy(t *testing.T) {
	rt := newRT(t, 4, Options{Mode: TRPC, BackOfQueue: true})
	count := 0
	inc := rt.Define("inc", func(e *oam.Env, caller int, arg []byte) []byte {
		count++
		return nil
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node == 0 {
			return
		}
		for i := 0; i < 5; i++ {
			inc.Call(c, 0, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("count = %d, want 15", count)
	}
}

// TestCallToSelf: RPC to one's own node goes through the loopback network
// path and completes.
func TestCallToSelf(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	echo := rt.Define("echo", func(e *oam.Env, caller int, arg []byte) []byte {
		return arg
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		arg := NewEnc(8)
		arg.U64(99)
		rep := NewDec(echo.Call(c, 0, arg.Bytes()))
		if rep.U64() != 99 {
			t.Errorf("self echo = %d", rep.U64())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRPCDeterminism(t *testing.T) {
	runOnce := func() (sim.Time, uint64) {
		eng := sim.New(23)
		u := am.NewUniverse(eng, 4, cm5.DefaultCostModel())
		defer eng.Shutdown()
		rt := New(u, Options{Mode: ORPC})
		s0 := u.Scheduler(0)
		mu := threads.NewMutex(s0)
		total := uint64(0)
		add := rt.Define("add", func(e *oam.Env, caller int, arg []byte) []byte {
			e.Lock(mu)
			e.Compute(sim.Duration(eng.Rand().Intn(10)) * sim.Microsecond)
			total += NewDec(arg).U64()
			e.Unlock(mu)
			return nil
		})
		end, err := u.SPMD(func(c threads.Ctx, node int) {
			if node == 0 {
				return
			}
			for i := 0; i < 10; i++ {
				arg := NewEnc(8)
				arg.U64(uint64(node*100 + i))
				add.Call(c, 0, arg.Bytes())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end, total
	}
	e1, t1 := runOnce()
	e2, t2 := runOnce()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, t1, e2, t2)
	}
}
