// Package core is the library's public face: it assembles the simulated
// CM-5-class machine, the user-level thread package, the Active Messages
// layer, and the Optimistic RPC runtime into one object — a Cluster — so
// applications can be written the way the paper's section 3 envisions:
// define remote procedures, then run an SPMD program that calls them with
// ordinary threads, mutexes, and condition variables.
//
// Everything here is re-exported from the subsystem packages (sim, cm5,
// threads, am, oam, rpc); use those directly for lower-level control.
package core

import (
	"repro/internal/am"
	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Convenient aliases so applications import only package core.
type (
	// Ctx is an execution context on a node (thread or handler).
	Ctx = threads.Ctx
	// Env is the capability a remote procedure body runs against.
	Env = oam.Env
	// Mutex is a node-local lock usable by threads and (via try-lock)
	// optimistic handlers.
	Mutex = threads.Mutex
	// Cond is a condition variable tied to a Mutex.
	Cond = threads.Cond
	// Flag is a single-waiter completion flag.
	Flag = threads.Flag
	// Thread is a user-level thread.
	Thread = threads.Thread
	// Proc is a defined remote procedure.
	Proc = rpc.Proc
	// CostModel carries the machine's virtual-time constants.
	CostModel = cm5.CostModel
	// Duration is virtual time.
	Duration = sim.Duration
	// Time is an absolute virtual timestamp.
	Time = sim.Time
)

// Strategy aliases for Options.
const (
	Rerun        = oam.Rerun
	Continuation = oam.Continuation
	Nack         = oam.Nack
)

// Mode aliases for Options.
const (
	ORPC = rpc.ORPC
	TRPC = rpc.TRPC
)

// Micros converts microseconds to a Duration.
func Micros(us float64) Duration { return sim.Micros(us) }

// Options configures a Cluster.
type Options struct {
	// Nodes is the machine size (default 2).
	Nodes int
	// Seed drives the deterministic simulation (default 1).
	Seed int64
	// Mode selects ORPC (default) or TRPC dispatch.
	Mode rpc.Mode
	// Strategy selects the OAM abort strategy (default Rerun, the
	// paper's prototype choice).
	Strategy oam.Strategy
	// HandlerBudget, when positive, aborts optimistic executions that
	// compute longer than this (the paper's "runs too long" check).
	HandlerBudget Duration
	// Cost overrides the default CM-5 cost model when non-nil.
	Cost *cm5.CostModel
}

// Cluster is a ready-to-run simulated machine with an RPC runtime.
type Cluster struct {
	eng *sim.Engine
	u   *am.Universe
	rt  *rpc.Runtime
}

// NewCluster builds a cluster. Define procedures before calling Run.
func NewCluster(opts Options) *Cluster {
	if opts.Nodes == 0 {
		opts.Nodes = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cost := cm5.DefaultCostModel()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	eng := sim.New(opts.Seed)
	u := am.NewUniverse(eng, opts.Nodes, cost)
	rt := rpc.New(u, rpc.Options{
		Mode: opts.Mode,
		OAM:  oam.Options{Strategy: opts.Strategy, HandlerBudget: opts.HandlerBudget},
	})
	return &Cluster{eng: eng, u: u, rt: rt}
}

// Nodes returns the machine size.
func (c *Cluster) Nodes() int { return c.u.N() }

// Runtime exposes the RPC runtime (Define/DefineAsync live there).
func (c *Cluster) Runtime() *rpc.Runtime { return c.rt }

// Universe exposes the Active Messages layer beneath the RPC runtime.
func (c *Cluster) Universe() *am.Universe { return c.u }

// Define registers a synchronous remote procedure; see rpc.Runtime.Define.
func (c *Cluster) Define(name string, impl rpc.Impl) *rpc.Proc {
	return c.rt.Define(name, impl)
}

// DefineAsync registers a fire-and-forget remote procedure.
func (c *Cluster) DefineAsync(name string, impl rpc.Impl) *rpc.Proc {
	return c.rt.DefineAsync(name, impl)
}

// NewMutex creates a mutex on node's scheduler.
func (c *Cluster) NewMutex(node int) *Mutex {
	return threads.NewMutex(c.u.Scheduler(node))
}

// NewCond creates a condition variable on mutex m.
func (c *Cluster) NewCond(m *Mutex) *Cond { return threads.NewCond(m) }

// Run executes body as the main thread of every node and returns the
// parallel virtual running time. It may be called once per cluster; the
// cluster is shut down afterwards.
func (c *Cluster) Run(body func(ctx Ctx, node int)) (Duration, error) {
	defer c.eng.Shutdown()
	end, err := c.u.SPMD(body)
	return Duration(end), err
}

// OAMStats reports the cluster-wide optimistic dispatch counters,
// combining the synchronous and asynchronous dispatchers.
func (c *Cluster) OAMStats() oam.Stats {
	s := c.rt.Dispatcher().Stats()
	a := c.rt.AsyncDispatcher().Stats()
	s.Total += a.Total
	s.Succeeded += a.Succeeded
	s.Promoted += a.Promoted
	s.Nacked += a.Nacked
	for i := range s.ByReason {
		s.ByReason[i] += a.ByReason[i]
	}
	return s
}

// Enc returns a wire-format encoder (for hand-written stubs; generated
// stubs from cmd/stubgen marshal automatically).
func Enc(capacity int) *rpc.Enc { return rpc.NewEnc(capacity) }

// Dec returns a wire-format decoder.
func Dec(b []byte) *rpc.Dec { return rpc.NewDec(b) }
