package exp

import (
	"reflect"
	"runtime"
	"testing"
)

// TestOptimisticEquivalenceApps: for all four applications, an optimistic
// sharded run — speculative commit spans instead of lockstep windows — is
// indistinguishable from the sequential one: same result struct, same
// Charged(), and a canonical schedule trace that hashes identically.
func TestOptimisticEquivalenceApps(t *testing.T) {
	for _, app := range []string{"triangle", "tsp", "sor", "water"} {
		seq := runShardedApp(t, app, 1, false)
		if seq.traceLen == 0 {
			t.Fatalf("%s: sequential run produced an empty schedule trace", app)
		}
		for _, s := range shardCounts[1:] {
			got := runShardedApp(t, app, s, true)
			if got.res != seq.res {
				t.Errorf("%s: optimistic result at shards=%d differs from sequential:\n got %+v\nwant %+v",
					app, s, got.res, seq.res)
			}
			if got.charged != seq.charged {
				t.Errorf("%s: optimistic Charged() at shards=%d = %v, want %v",
					app, s, got.charged, seq.charged)
			}
			if got.traceHash != seq.traceHash || got.traceLen != seq.traceLen {
				t.Errorf("%s: optimistic schedule trace at shards=%d (hash %#x, %d bytes) differs from sequential (hash %#x, %d bytes)",
					app, s, got.traceHash, got.traceLen, seq.traceHash, seq.traceLen)
			}
		}
	}
}

// TestOptimisticEquivalenceChaos: the full quick chaos sweep — loss,
// duplication, a mid-run crash, and a permanent partition — produces
// byte-identical rows (including the fault-trace hashes) under optimistic
// sharding at every shard count. Spans are cut at fault-plan edges (see
// cm5.Machine.NextBound), so speculation crosses slow windows and
// partitions without perturbing a single fault decision.
func TestOptimisticEquivalenceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep three times")
	}
	savedShards, savedWorkers, savedOpt := Shards, Workers, Optimistic
	defer func() { Shards, Workers, Optimistic = savedShards, savedWorkers, savedOpt }()
	Workers = 1

	var seq []ChaosRow
	for _, s := range shardCounts {
		Shards, Optimistic = s, s > 1
		rows, err := Chaos(Scale{Quick: true})
		if err != nil {
			t.Fatalf("optimistic chaos sweep (shards=%d): %v", s, err)
		}
		for i, r := range rows {
			if !r.OK {
				t.Errorf("optimistic chaos row %d (shards=%d): wrong answer", i, s)
			}
		}
		if s == 1 {
			seq = rows
			continue
		}
		if !reflect.DeepEqual(rows, seq) {
			for i := range rows {
				if rows[i] != seq[i] {
					t.Errorf("optimistic chaos row %d at shards=%d differs from sequential:\n got %+v\nwant %+v",
						i, s, rows[i], seq[i])
				}
			}
		}
	}
}

// TestOptimisticEquivalenceSched: the control-plane chaos grid — event
// record and fault-trace hashes included — is byte-identical under
// optimistic sharding.
func TestOptimisticEquivalenceSched(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sched sweep three times")
	}
	savedShards, savedWorkers, savedOpt := Shards, Workers, Optimistic
	defer func() { Shards, Workers, Optimistic = savedShards, savedWorkers, savedOpt }()
	Workers = 1

	var seq []SchedRow
	for _, s := range shardCounts {
		Shards, Optimistic = s, s > 1
		rows, err := Sched(Scale{Quick: true})
		if err != nil {
			t.Fatalf("optimistic sched sweep (shards=%d): %v", s, err)
		}
		if s == 1 {
			seq = rows
			continue
		}
		if !reflect.DeepEqual(rows, seq) {
			for i := range rows {
				if rows[i] != seq[i] {
					t.Errorf("optimistic sched row %d at shards=%d differs from sequential:\n got %+v\nwant %+v",
						i, s, rows[i], seq[i])
				}
			}
		}
	}
}

// TestOptimisticBenchPass: the bench report's optimistic storm runs,
// matches the sequential pass bit-for-bit (KernelStormOptimistic panics
// otherwise), and reports coherent counters. Speedup numbers are only
// validity-checked, never asserted — that is CI's job, keyed off
// speedup_valid.
func TestOptimisticBenchPass(t *testing.T) {
	sb, ob := KernelStormOptimistic(4, 400, 2)
	if sb.Windows == 0 {
		t.Fatalf("conservative pass ran no windows: %+v", sb)
	}
	if ob.Spans == 0 {
		t.Fatalf("optimistic pass ran no spans: %+v", ob)
	}
	if ob.Spans >= sb.Windows {
		t.Errorf("optimistic spans (%d) not fewer than conservative windows (%d): speculation is not amortizing barriers",
			ob.Spans, sb.Windows)
	}
	if ob.Events != sb.Events {
		t.Errorf("event counts differ: optimistic %d, conservative %d", ob.Events, sb.Events)
	}
	if ob.SpecEvents == 0 {
		t.Errorf("optimistic pass executed no speculative events: %+v", ob)
	}
	wantValid := runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() >= 2
	if sb.SpeedupValid != wantValid || ob.SpeedupValid != wantValid {
		t.Errorf("speedup_valid = %v/%v, want %v (GOMAXPROCS=%d, NumCPU=%d)",
			sb.SpeedupValid, ob.SpeedupValid, wantValid, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if sb.Overhead.WindowWallNs <= 0 || sb.Overhead.ShardBusyNs <= 0 {
		t.Errorf("window overhead breakdown not populated: %+v", sb.Overhead)
	}
}
