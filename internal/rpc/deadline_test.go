package rpc

import (
	"errors"
	"testing"

	"repro/internal/cm5"
	"repro/internal/oam"
	"repro/internal/sim"
	"repro/internal/threads"
)

// TestCallWithDeadlineSuccess: a healthy call inside its window behaves
// exactly like Call.
func TestCallWithDeadlineSuccess(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	echo := rt.Define("echo", func(e *oam.Env, caller int, arg []byte) []byte { return arg })
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		if node != 0 {
			return
		}
		arg := NewEnc(8)
		arg.U64(77)
		res, err := echo.CallWithDeadline(c, 1, arg.Bytes(), sim.Micros(1000))
		if err != nil {
			t.Errorf("deadline call failed: %v", err)
			return
		}
		if NewDec(res).U64() != 77 {
			t.Errorf("wrong reply")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := echo.Stats(); st.Timeouts != 0 {
		t.Fatalf("unexpected timeouts: %+v", st)
	}
}

// TestCallWithDeadlineTimesOut: a procedure that blocks forever turns into
// ErrDeadline at the client instead of a hung simulation.
func TestCallWithDeadlineTimesOut(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	s1 := rt.Universe().Scheduler(1)
	mu := threads.NewMutex(s1)
	cv := threads.NewCond(mu)
	hang := rt.Define("hang", func(e *oam.Env, caller int, arg []byte) []byte {
		e.Lock(mu)
		e.Await(cv, func() bool { return false }) // never
		e.Unlock(mu)
		return nil
	})
	stopped := false
	stop := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
		stopped = true
		return nil
	})
	_, err := rt.Universe().SPMD(func(c threads.Ctx, node int) {
		ep := rt.Universe().Endpoint(node)
		if node == 1 {
			for !stopped {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		_, err := hang.CallWithDeadline(c, 1, nil, sim.Micros(500))
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("err = %v, want ErrDeadline", err)
		}
		stop.CallAsync(c, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := hang.Stats(); st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1 (%+v)", st.Timeouts, st)
	}
}

// TestCallIdempotentAgainstCrashedServer: every attempt times out against
// a dead node; the caller gets a clean error after exactly k timeouts.
func TestCallIdempotentAgainstCrashedServer(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	u := rt.Universe()
	u.Machine().SetFaultPlan(&cm5.FaultPlan{Seed: 1, Crashes: []cm5.Crash{{Node: 1, At: sim.Time(10 * sim.Microsecond)}}})
	ping := rt.Define("ping", func(e *oam.Env, caller int, arg []byte) []byte { return nil })
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for !ep.Node().Crashed() {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		c.P.Charge(sim.Micros(50)) // send only after the crash
		_, err := ping.CallIdempotent(c, 1, nil, sim.Micros(200), 3)
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("err = %v, want ErrDeadline", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := ping.Stats(); st.Timeouts != 3 {
		t.Fatalf("Timeouts = %d, want 3 (%+v)", st.Timeouts, st)
	}
}

// TestCallIdempotentRecoversAfterPartition: requests blackholed during a
// partition window time out; the retry after the window heals succeeds.
func TestCallIdempotentRecoversAfterPartition(t *testing.T) {
	rt := newRT(t, 2, Options{Mode: ORPC})
	u := rt.Universe()
	u.Machine().SetFaultPlan(&cm5.FaultPlan{
		Seed:       2,
		Partitions: []cm5.Partition{{Src: 0, Dst: 1, From: 0, To: sim.Time(300 * sim.Microsecond)}},
	})
	done := false
	echo := rt.Define("echo", func(e *oam.Env, caller int, arg []byte) []byte { return arg })
	stop := rt.DefineAsync("stop", func(e *oam.Env, caller int, arg []byte) []byte {
		done = true
		return nil
	})
	_, err := u.SPMD(func(c threads.Ctx, node int) {
		ep := u.Endpoint(node)
		if node == 1 {
			for !done {
				ep.Poll(c)
				c.P.Charge(sim.Micros(2))
				c.S.Yield(c)
			}
			return
		}
		arg := NewEnc(8)
		arg.U64(5)
		res, err := echo.CallIdempotent(c, 1, arg.Bytes(), sim.Micros(150), 5)
		if err != nil {
			t.Errorf("call through healed partition failed: %v", err)
		} else if NewDec(res).U64() != 5 {
			t.Errorf("wrong reply")
		}
		stop.CallAsync(c, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := echo.Stats()
	if st.Timeouts == 0 {
		t.Fatalf("expected at least one timeout inside the partition window (%+v)", st)
	}
	if fs := u.Machine().FaultStats(); fs.PartitionDrops == 0 {
		t.Fatalf("partition dropped nothing")
	}
}

// TestNextBackoffCap: the doubling backoff respects NackBackoffMax.
func TestNextBackoffCap(t *testing.T) {
	max := sim.Micros(320)
	b := sim.Micros(10)
	var seen []sim.Duration
	for i := 0; i < 8; i++ {
		seen = append(seen, b)
		b = nextBackoff(b, max)
	}
	want := []sim.Duration{
		sim.Micros(10), sim.Micros(20), sim.Micros(40), sim.Micros(80),
		sim.Micros(160), sim.Micros(320), sim.Micros(320), sim.Micros(320),
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("backoff[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}
